lib/rpq/pgraph.ml: Ig_graph Ig_nfa List
