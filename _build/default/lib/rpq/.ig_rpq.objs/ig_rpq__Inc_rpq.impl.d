lib/rpq/inc_rpq.ml: Batch Hashtbl Ig_graph Ig_nfa Int List Option Pgraph Printf Stack
