lib/rpq/batch.ml: Hashtbl Ig_graph Ig_nfa List Pgraph Queue
