(** The intersection (product) graph of a data graph and a query NFA.

    Nodes are pairs [(v, s)] of a graph node and an NFA state, encoded as a
    single integer key; there is an edge [(v,s) → (w,s')] iff [(v,w) ∈ E]
    and [s' ∈ δ(s, l(w))] (paper Section 5.2, Fig. 4). The product graph is
    never materialized: successors and predecessors are enumerated on the
    fly from the graph adjacency and the (inverse) NFA transitions, which is
    how IncRPQ derives the paper's [cpre]/[mpre] marking fields instead of
    storing them.

    A run for source [u] starts with a virtual hop [(u, s0) → (u, s)] for
    [s ∈ δ(s0, l(u))] — consuming the label of the path's first node — so a
    node [u] is a {e source} iff [δ(s0, l(u)) ≠ ∅]. *)

type node = Ig_graph.Digraph.node
type state = Ig_nfa.Nfa.state
type key = int

type t

val make : Ig_graph.Digraph.t -> Ig_nfa.Nfa.t -> t
(** A lightweight view; reflects later graph mutations. *)

val graph : t -> Ig_graph.Digraph.t
val nfa : t -> Ig_nfa.Nfa.t

val key : t -> node -> state -> key
val node_of : t -> key -> node
val state_of : t -> key -> state

val is_source : t -> node -> bool

val initial_states : t -> node -> state list
(** [δ(s0, l(u))] — the states entered by the virtual hop. *)

val sources : t -> node list
(** All source nodes of the current graph. *)

val iter_succ : t -> key -> (key -> unit) -> unit
(** Product successors of [(v,s)]. *)

val iter_pred : t -> key -> (key -> unit) -> unit
(** Product predecessors: all [(v',s')] with an edge to [(v,s)]. *)

val succ_keys_of_edge : t -> state -> node -> state list
(** [succ_keys_of_edge p s w] = [δ(s, l(w))]: the states reachable when the
    underlying graph edge ends at [w] and the run is in state [s]. *)

val is_accepting : t -> key -> bool
