(** Batch keyword search with distinct roots (paper Section 2.1).

    A query is a list of keywords [(k1, …, km)] and a hop bound [b]. A match
    at root [r] is a tree rooted at [r] containing, for each keyword, a node
    matching it within [b] directed hops, with the total distance minimal —
    so a root matches iff every keyword is within [b] hops, and the tree is
    the union of one shortest path per keyword. Each root determines at most
    one match (ties broken by smallest successor id).

    This module is the batch baseline the paper calls BLINKS [27]: like
    BLINKS (and BANKS [8], bidirectional search [30]), it works backward
    from the keyword nodes — a bounded multi-source reverse BFS per keyword
    from a keyword→nodes index — building exactly the keyword-distance lists
    [kdist(·)] that the incremental algorithms maintain. It is in the
    [O(m(|V| log |V| + |E|))] class the paper cites via [45] (BFS suffices
    here because hops are unit-weight). *)

type node = Ig_graph.Digraph.node

type query = {
  keywords : string list;  (** [k1 … km], matched against node labels *)
  bound : int;             (** [b ≥ 0], max hops from root to keyword *)
}

type entry = { dist : int; next : node }
(** One [kdist] record: shortest distance to a node matching the keyword,
    and the chosen successor on that path ([next = -1] when [dist = 0],
    i.e. the node itself matches). *)

val kdist_maps : Ig_graph.Digraph.t -> query -> (node, entry) Hashtbl.t array
(** One map per keyword (query order); only entries with [dist ≤ bound] are
    present. [next] is the smallest-id successor on a shortest path. *)

val roots_of_kdist : (node, entry) Hashtbl.t array -> node list
(** Nodes present in every per-keyword map — the match roots. *)

val run : Ig_graph.Digraph.t -> query -> node list
(** All match roots of [Q(G)]. *)

val tree_of : (node, entry) Hashtbl.t array -> node -> (int * node list) list
(** [tree_of kd r]: for each keyword index, the path [r … p_i] following
    [next] pointers. Empty list if [r] is not a match root. *)
