lib/kws/inc_kws.mli: Batch Ig_graph
