lib/kws/batch.ml: Array Hashtbl Ig_graph List Queue
