lib/kws/inc_kws.ml: Array Batch Hashtbl Ig_graph Int List Option Printf Stack
