lib/kws/batch.mli: Hashtbl Ig_graph
